//! Tests of the textual IR pipeline a `dswpc` user sees: parse a
//! hand-written fixture, transform it, emit it, parse the emission, and get
//! identical results everywhere.

use dswp_repro::dswp::{dswp_loop, select_loop, DswpOptions};
use dswp_repro::ir::interp::Interpreter;
use dswp_repro::ir::verify::verify_program;
use dswp_repro::ir::{parse_program, to_text};
use dswp_repro::sim::{Executor, Machine, MachineConfig};

const FIXTURE: &str = include_str!("fixtures/list.ir");

#[test]
fn fixture_parses_and_runs() {
    let p = parse_program(FIXTURE).unwrap();
    let r = Interpreter::new(&p).run().unwrap();
    // Every node's value was incremented: 5,6,7,8 → 6,7,8,9.
    assert_eq!(r.memory[9], 6);
    assert_eq!(r.memory[15], 9);
}

#[test]
fn fixture_full_cli_pipeline() {
    let mut p = parse_program(FIXTURE).unwrap();
    let main = p.main();
    let baseline = Interpreter::new(&p).run().unwrap();
    let header = select_loop(&p, main, &baseline.profile, 2.0).unwrap();
    dswp_loop(
        &mut p,
        main,
        header,
        &baseline.profile,
        &DswpOptions::default(),
    )
    .unwrap();

    // Emit → parse → run, as `dswpc --emit` then `dswpc --sim` would.
    let text = to_text(&p);
    let reparsed = parse_program(&text).unwrap();
    let exec = Executor::new(&reparsed).run().unwrap();
    assert_eq!(exec.memory, baseline.memory);
    let sim = Machine::new(&reparsed, MachineConfig::full_width())
        .run()
        .unwrap();
    assert_eq!(sim.memory, baseline.memory);
    assert_eq!(sim.cores.len(), 2);
}

/// Every fixture in `tests/fixtures/` must survive parse → print → parse →
/// print with a stable printed form, and reparsing must not change what the
/// program computes.
#[test]
fn every_fixture_round_trips() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut fixtures: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "ir"))
        .collect();
    fixtures.sort();
    assert!(
        fixtures.len() >= 3,
        "expected at least 3 fixtures in {}, found {}",
        dir.display(),
        fixtures.len()
    );

    for path in fixtures {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(&path).unwrap();
        // `malformed_*.ir` are negative fixtures: they must be rejected by
        // the parser or by structural verification, never accepted.
        if name.starts_with("malformed") {
            let rejected = match parse_program(&src) {
                Err(_) => true,
                Ok(p) => verify_program(&p).is_err(),
            };
            assert!(rejected, "{name}: malformed fixture was accepted");
            continue;
        }
        let p1 = parse_program(&src).unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
        let t1 = to_text(&p1);
        let p2 = parse_program(&t1).unwrap_or_else(|e| panic!("{name}: reparse failed: {e}"));
        let t2 = to_text(&p2);
        assert_eq!(t1, t2, "{name}: printed form not a fixed point");

        // The reparsed program computes the same thing as the original, on
        // the engine that fits its shape.
        if p1.num_threads() == 1 {
            let a = Interpreter::new(&p1).run().unwrap();
            let b = Interpreter::new(&p2).run().unwrap();
            assert_eq!(
                a.memory, b.memory,
                "{name}: memory changed across round-trip"
            );
        } else {
            // Some fixtures (e.g. `deadlock.ir`) fail by design with a
            // structured error; the round-trip must preserve that outcome
            // exactly, success or not.
            match (Executor::new(&p1).run(), Executor::new(&p2).run()) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(
                        a.memory, b.memory,
                        "{name}: memory changed across round-trip"
                    );
                    assert_eq!(
                        a.streams, b.streams,
                        "{name}: streams changed across round-trip"
                    );
                }
                (Err(a), Err(b)) => {
                    assert_eq!(
                        format!("{a:?}"),
                        format!("{b:?}"),
                        "{name}: error changed across round-trip"
                    );
                }
                (a, b) => panic!(
                    "{name}: outcome changed across round-trip: {:?} vs {:?}",
                    a.is_ok(),
                    b.is_ok()
                ),
            }
        }
    }
}

#[test]
fn sum_fixture_computes_expected_total() {
    let src = include_str!("fixtures/sum.ir");
    let p = parse_program(src).unwrap();
    let r = Interpreter::new(&p).run().unwrap();
    assert_eq!(r.memory[0], 31);
}

#[test]
fn calls_fixture_runs_helper() {
    let src = include_str!("fixtures/calls.ir");
    let p = parse_program(src).unwrap();
    let r = Interpreter::new(&p).run().unwrap();
    assert_eq!(r.memory[0], 1);
    assert_eq!(r.memory[1], 42);
}

/// The hand-written pipeline fixture runs identically on the functional
/// executor and the native runtime, exercising every queue opcode the text
/// format knows (PRODUCE, CONSUME, and their .token forms).
#[test]
fn pipeline_fixture_runs_on_both_concurrent_engines() {
    let src = include_str!("fixtures/pipeline.ir");
    let p = parse_program(src).unwrap();

    let exec = Executor::new(&p).run().unwrap();
    assert_eq!(exec.memory[0], 10, "sum of 0..5");

    let native = dswp_repro::rt::Runtime::new(&p)
        .with_config(
            dswp_repro::rt::RtConfig::default()
                .queue_capacity(2)
                .record_streams(true),
        )
        .run()
        .unwrap();
    assert_eq!(native.memory, exec.memory);
    assert_eq!(native.streams.unwrap(), exec.streams);
}

#[test]
fn parse_errors_are_actionable() {
    let bad = FIXTURE.replace("r2 = add r2, 1", "r2 = bogus r2, 1");
    let err = parse_program(&bad).unwrap_err();
    assert!(err.line > 0);
    assert!(err.message.contains("bogus"), "{err}");
}
