//! `dswpc` — a command-line driver for the DSWP reproduction.
//!
//! Reads a program in the `dswp-ir` text format, optionally unrolls and
//! DSWP-transforms its hottest loop, and runs it on the interpreter or the
//! dual-core timing model.
//!
//! ```text
//! USAGE: dswpc <file.ir> [options]
//!
//!   --dswp                 apply automatic DSWP to the selected loop
//!   --loop bbN             select the loop with this header (default: hottest)
//!   --unroll K             unroll the selected loop K times first
//!   --alias MODE           conservative | region | precise   (default region)
//!   --threads N            pipeline stages to target          (default 2)
//!   --stats                print Table 1-style loop statistics
//!   --dot FILE             write the loop's PDG as Graphviz to FILE
//!   --emit FILE            write the (transformed) program text to FILE
//!   --sim [full|half]      run on the timing model             (default full)
//!   --comm N               inter-core latency for --sim        (default 1)
//!   --run [functional|native]  execute the program: `functional` on the
//!                          deterministic executor (default), `native` on
//!                          real OS threads (one per pipeline stage)
//!   --queue-cap N          native queue capacity in values     (default 32)
//!   --batch N|auto         native communication batch: values per queue
//!                          publish (`auto` derives it from the capacity;
//!                          token queues are capped low; default 1)
//!   --replicate N|auto     replicate every DOALL stage N ways (`auto`
//!                          distributes the available cores across the
//!                          DOALL stages by the stage cost estimate;
//!                          requires `--dswp --alias precise`)
//!   --steal on|off         scatter routing for replicated stages: `on`
//!                          sends each iteration to the least-loaded
//!                          replica (queue-depth feedback), `off` keeps
//!                          deterministic round-robin (default off)
//!   --spin SPINS,YIELDS    native blocked-queue backoff: busy-spin then
//!                          yield iterations before parking (default 64,32)
//!   --chaos SEED           run `--run native` under the seeded fault plan
//!                          (delays, stalls, forced panics, poisoning)
//!   --deadline MS          hard wall-clock deadline for `--run native`;
//!                          exceeded runs fail with a timeout diagnosis
//! ```
//!
//! Exit codes: 0 success, 1 input/transform/execution errors, 2 usage.
//! `--run native` failures map the structured runtime error to a distinct
//! code so scripts and CI can tell a deadlock from a panic from a timeout:
//! deadlock 10, watchdog 11, stage panic 12, queue poisoned 13, deadline
//! timeout 14, cancelled 15, memory out of bounds 20, bad indirect call
//! target 21, step limit 22, return from entry 23.

use std::process::ExitCode;

use dswp_repro::analysis::{AliasMode, DagScc};
use dswp_repro::dswp::PipelineMap;
use dswp_repro::dswp::{
    analyze_loop, annotate_loop_affine, dswp_loop, loop_stats, select_loop, unroll_loop,
    DswpOptions, Replicate, ScatterPolicy,
};
use dswp_repro::ir::interp::Interpreter;
use dswp_repro::ir::verify::verify_program;
use dswp_repro::ir::{parse_program, to_text, BlockId};
use dswp_repro::rt::{silence_injected_panics, BatchPolicy, FaultPlan, RtConfig, RtError, Runtime};
use dswp_repro::sim::{Executor, Machine, MachineConfig};

#[derive(Clone, Copy, PartialEq, Eq)]
enum RunMode {
    Functional,
    Native,
}

struct Args {
    file: String,
    dswp: bool,
    loop_header: Option<BlockId>,
    unroll: Option<usize>,
    alias: AliasMode,
    threads: usize,
    stats: bool,
    dot: Option<String>,
    emit: Option<String>,
    sim: Option<MachineConfig>,
    comm: u64,
    run: Option<RunMode>,
    queue_cap: usize,
    batch: Option<BatchPolicy>,
    replicate: Replicate,
    steal: ScatterPolicy,
    spin: Option<(u32, u32)>,
    chaos: Option<u64>,
    deadline: Option<std::time::Duration>,
}

/// Exit code for a structured native-runtime error (documented in the
/// module header and asserted by `tests/cli.rs`).
fn rt_exit_code(e: &RtError) -> u8 {
    match e {
        RtError::Deadlock { .. } => 10,
        RtError::Watchdog { .. } => 11,
        RtError::StagePanic { .. } => 12,
        RtError::QueuePoisoned { .. } => 13,
        RtError::Timeout { .. } => 14,
        RtError::Cancelled => 15,
        RtError::MemoryOutOfBounds { .. } => 20,
        RtError::BadIndirectTarget(_) => 21,
        RtError::StepLimit(_) => 22,
        RtError::ReturnFromEntry(_) => 23,
    }
}

/// One-line usage synopsis; `tests/docs.rs` checks that every flag listed
/// here is documented in `README.md`.
const USAGE: &str = "usage: dswpc <file.ir> [--dswp] [--loop bbN] [--unroll K] \
     [--alias conservative|region|precise] [--threads N] [--stats] \
     [--dot FILE] [--emit FILE] [--sim [full|half]] [--comm N] \
     [--run [functional|native]] [--queue-cap N] [--batch N|auto] \
     [--replicate N|auto] [--steal on|off] [--spin SPINS,YIELDS] \
     [--chaos SEED] [--deadline MS]";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        file: String::new(),
        dswp: false,
        loop_header: None,
        unroll: None,
        alias: AliasMode::Region,
        threads: 2,
        stats: false,
        dot: None,
        emit: None,
        sim: None,
        comm: 1,
        run: None,
        queue_cap: 32,
        batch: None,
        replicate: Replicate::Off,
        steal: ScatterPolicy::RoundRobin,
        spin: None,
        chaos: None,
        deadline: None,
    };
    let mut it = std::env::args().skip(1).peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            "--dswp" => args.dswp = true,
            "--stats" => args.stats = true,
            "--run" => {
                args.run = Some(match it.peek().map(String::as_str) {
                    Some("native") => {
                        it.next();
                        RunMode::Native
                    }
                    Some("functional") => {
                        it.next();
                        RunMode::Functional
                    }
                    _ => RunMode::Functional,
                });
            }
            "--queue-cap" => {
                args.queue_cap = it
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--batch" => {
                args.batch = Some(match it.next().as_deref() {
                    Some("auto") => BatchPolicy::Auto,
                    Some(v) => BatchPolicy::Fixed(
                        v.parse::<usize>()
                            .ok()
                            .filter(|&n| n >= 1)
                            .unwrap_or_else(|| usage()),
                    ),
                    None => usage(),
                });
            }
            "--replicate" => {
                args.replicate = match it.next().as_deref() {
                    Some("auto") => Replicate::Auto { cores: None },
                    Some(v) => Replicate::Fixed(
                        v.parse::<usize>()
                            .ok()
                            .filter(|&n| n >= 1)
                            .unwrap_or_else(|| usage()),
                    ),
                    None => usage(),
                };
            }
            "--steal" => {
                args.steal = match it.next().as_deref() {
                    Some("on") => ScatterPolicy::WorkStealing,
                    Some("off") => ScatterPolicy::RoundRobin,
                    _ => usage(),
                };
            }
            "--spin" => {
                let v = it.next().unwrap_or_else(|| usage());
                let (s, y) = v.split_once(',').unwrap_or_else(|| usage());
                args.spin = Some((
                    s.parse::<u32>().unwrap_or_else(|_| usage()),
                    y.parse::<u32>().unwrap_or_else(|_| usage()),
                ));
            }
            "--chaos" => {
                args.chaos = Some(
                    it.next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--deadline" => {
                args.deadline = Some(std::time::Duration::from_millis(
                    it.next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .filter(|&ms| ms >= 1)
                        .unwrap_or_else(|| usage()),
                ));
            }
            "--loop" => {
                let v = it.next().unwrap_or_else(|| usage());
                let n = v
                    .trim_start_matches("bb")
                    .parse()
                    .unwrap_or_else(|_| usage());
                args.loop_header = Some(BlockId(n));
            }
            "--unroll" => {
                args.unroll = Some(
                    it.next()
                        .and_then(|v| v.parse::<usize>().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--alias" => {
                args.alias = match it.next().as_deref() {
                    Some("conservative") => AliasMode::Conservative,
                    Some("region") => AliasMode::Region,
                    Some("precise") => AliasMode::Precise,
                    _ => usage(),
                };
            }
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or_else(|| usage());
            }
            "--dot" => args.dot = Some(it.next().unwrap_or_else(|| usage())),
            "--emit" => args.emit = Some(it.next().unwrap_or_else(|| usage())),
            "--comm" => {
                args.comm = it
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or_else(|| usage());
            }
            "--sim" => {
                let cfg = match it.peek().map(String::as_str) {
                    Some("half") => {
                        it.next();
                        MachineConfig::half_width()
                    }
                    Some("full") => {
                        it.next();
                        MachineConfig::full_width()
                    }
                    _ => MachineConfig::full_width(),
                };
                args.sim = Some(cfg);
            }
            _ if args.file.is_empty() && !a.starts_with('-') => args.file = a,
            _ => usage(),
        }
    }
    if args.file.is_empty() {
        usage();
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let text = match std::fs::read_to_string(&args.file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("dswpc: cannot read {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    let mut program = match parse_program(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("dswpc: {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    // Structural verification gate: a parseable but malformed program
    // (out-of-range registers, branch targets, queues, call targets, missing
    // terminators) must be rejected here instead of panicking deep inside an
    // execution engine or the DSWP transformation.
    if let Err(e) = verify_program(&program) {
        eprintln!("dswpc: {}: invalid program: {e}", args.file);
        return ExitCode::FAILURE;
    }
    let main_fn = program.main();

    // Profile lazily: multi-threaded inputs (e.g. a previously emitted DSWP
    // program) cannot run on the single-context interpreter, but they also
    // need no profile for --run / --sim.
    let needs_loop = args.dswp || args.stats || args.unroll.is_some() || args.dot.is_some();
    let baseline = match Interpreter::new(&program).run() {
        Ok(r) => Some(r),
        Err(e) => {
            if needs_loop && args.loop_header.is_none() {
                eprintln!("dswpc: profiling run failed: {e}");
                return ExitCode::FAILURE;
            }
            None
        }
    };
    let header = args.loop_header.or_else(|| {
        baseline
            .as_ref()
            .and_then(|b| select_loop(&program, main_fn, &b.profile, 2.0))
    });

    if let Some(header) = header {
        if let Some(k) = args.unroll {
            if let Err(e) = unroll_loop(&mut program, main_fn, header, k) {
                eprintln!("dswpc: unroll failed: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("unrolled {header} x{k}");
        }
        if args.alias == AliasMode::Precise {
            // Derive affine memory facts automatically (mini scalar
            // evolution) so --alias precise works on unannotated inputs.
            match annotate_loop_affine(&mut program, main_fn, header) {
                Ok(s) => eprintln!(
                    "scev: {} access(es) annotated, {} unanalyzable",
                    s.annotated, s.unanalyzed
                ),
                Err(e) => eprintln!("dswpc: scev failed: {e}"),
            }
        }
        if args.stats {
            match loop_stats(&program, main_fn, header, args.alias) {
                Ok(s) => eprintln!(
                    "loop {header}: depth {}, {} blocks, {} instrs, {} SCCs (largest {})",
                    s.depth, s.blocks, s.instrs, s.sccs, s.largest_scc
                ),
                Err(e) => eprintln!("dswpc: stats failed: {e}"),
            }
        }
        if let Some(path) = &args.dot {
            match analyze_loop(&program, main_fn, header, args.alias) {
                Ok(a) => {
                    let dag = DagScc::compute(&a.pdg.instr_graph());
                    let dot = dswp_repro::analysis::pdg_to_dot(
                        a.normalized.function(main_fn),
                        &a.pdg,
                        Some(&dag),
                    );
                    if let Err(e) = std::fs::write(path, dot) {
                        eprintln!("dswpc: cannot write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("wrote PDG to {path}");
                }
                Err(e) => eprintln!("dswpc: analysis failed: {e}"),
            }
        }
        if args.dswp {
            // Re-profile in case unrolling changed block ids/weights.
            let profile = Interpreter::new(&program).run().map(|r| r.profile);
            let profile = match profile {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("dswpc: re-profiling failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if args.replicate != Replicate::Off && args.alias != AliasMode::Precise {
                eprintln!(
                    "dswpc: warning: replication needs `--alias precise` to prove \
                     iterations independent; stages will not replicate"
                );
            }
            let opts = DswpOptions {
                alias: args.alias,
                max_threads: args.threads,
                replicate: args.replicate,
                scatter: args.steal,
                ..DswpOptions::default()
            };
            match dswp_loop(&mut program, main_fn, header, &profile, &opts) {
                Ok(report) => {
                    eprintln!(
                        "DSWP: {} SCCs -> {} stages, flows {}i/{}l/{}f, est. speedup {:.2}x",
                        report.num_sccs,
                        report.partitioning.num_threads,
                        report.artifacts.flows.initial,
                        report.artifacts.flows.loop_flows,
                        report.artifacts.flows.final_flows,
                        report.estimated_speedup
                    );
                    for info in &report.replication {
                        eprintln!(
                            "replicate: stage {} x{} ({} new queue(s), {} new thread(s){}{})",
                            info.stage,
                            info.replicas,
                            info.new_queues,
                            info.new_threads,
                            if info.gather.is_some() {
                                ", gathered"
                            } else {
                                ""
                            },
                            if info.policy == ScatterPolicy::WorkStealing {
                                ", stealing"
                            } else {
                                ""
                            }
                        );
                    }
                    if report.replication.is_empty() && args.replicate != Replicate::Off {
                        eprintln!("replicate: no stage eligible");
                    }
                }
                Err(e) => {
                    eprintln!("dswpc: DSWP declined: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    } else if args.dswp || args.stats || args.unroll.is_some() {
        eprintln!("dswpc: no candidate loop found");
        return ExitCode::FAILURE;
    }

    if let Some(path) = &args.emit {
        if let Err(e) = std::fs::write(path, to_text(&program)) {
            eprintln!("dswpc: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote program to {path}");
    }

    match args.run {
        Some(RunMode::Functional) => match Executor::new(&program).run() {
            Ok(r) => {
                println!("functional: {:?} steps per context", r.steps);
                print_mem("memory", &r.memory);
            }
            Err(e) => {
                eprintln!("dswpc: execution failed: {e}");
                return ExitCode::FAILURE;
            }
        },
        Some(RunMode::Native) => {
            let map = PipelineMap::infer(&program);
            if let Err(e) = map.validate() {
                eprintln!("dswpc: warning: pipeline map: {e}");
            }
            eprint!("{}", map.summary(&program));
            let mut cfg = RtConfig::default().queue_capacity(args.queue_cap);
            if let Some(policy) = args.batch {
                // Resolve the policy against the configured capacity, then
                // let the pipeline map shape it per queue (token queues
                // stay shallow, unused queues drop to 1).
                let base = policy.chunk(args.queue_cap);
                let hints = map.batch_hints(base);
                eprintln!("batch: base {base}, per-queue {hints:?}");
                cfg = cfg.queue_batches(hints);
            }
            if let Some((spins, yields)) = args.spin {
                cfg = cfg.spin(spins, yields);
            }
            if let Some(deadline) = args.deadline {
                cfg = cfg.deadline(deadline);
            }
            if let Some(seed) = args.chaos {
                let plan =
                    FaultPlan::from_seed(seed, program.num_threads(), program.num_queues as usize);
                eprintln!("chaos: {plan}");
                silence_injected_panics();
                cfg = cfg.faults(plan);
            }
            match Runtime::new(&program).with_config(cfg).run() {
                Ok(r) => {
                    println!(
                        "native: {:.3} ms on {} stage thread(s)",
                        r.elapsed.as_secs_f64() * 1e3,
                        r.stages.len()
                    );
                    let roles = map.roles(&program);
                    for (i, s) in r.stages.iter().enumerate() {
                        let role = match roles.get(i) {
                            Some(dswp_repro::dswp::StageRole::Scatter(t)) => {
                                format!(" [scatter {t}]")
                            }
                            Some(dswp_repro::dswp::StageRole::Replica { stage, index }) => {
                                format!(" [stage {stage} replica {index}]")
                            }
                            Some(dswp_repro::dswp::StageRole::Gather(t)) => {
                                format!(" [gather {t}]")
                            }
                            _ => String::new(),
                        };
                        println!(
                            "  stage {i}: {} steps, {:.3} ms wall ({:.3} ms blocked){}{role}",
                            s.steps,
                            s.wall.as_secs_f64() * 1e3,
                            s.blocked.as_secs_f64() * 1e3,
                            if s.parked { ", parked" } else { "" }
                        );
                    }
                    // Per-replica-group rollup: total throughput of the
                    // replicated stage and how evenly it spread.
                    for g in map.replica_groups(&program) {
                        let steps: Vec<u64> = g
                            .replica_threads
                            .iter()
                            .filter_map(|&t| r.stages.get(t).map(|s| s.steps))
                            .collect();
                        let total: u64 = steps.iter().sum();
                        let blocked: f64 = g
                            .replica_threads
                            .iter()
                            .filter_map(|&t| r.stages.get(t).map(|s| s.blocked.as_secs_f64()))
                            .sum();
                        println!(
                            "  replicas of stage {}: {} thread(s), {} steps total \
                             (per replica {:?}), {:.3} ms blocked across replicas",
                            g.stage,
                            g.replica_threads.len(),
                            total,
                            steps,
                            blocked * 1e3
                        );
                    }
                    for (q, s) in r.queues.iter().enumerate().filter(|(_, s)| s.produced > 0) {
                        println!(
                            "  queue {q}: {} values, max occupancy {}/{}, blocks {}p/{}c, \
                             avg batch {:.1}w/{:.1}r",
                            s.produced,
                            s.max_occupancy,
                            s.capacity,
                            s.producer_blocks,
                            s.consumer_blocks,
                            s.flush_sizes.mean(),
                            s.refill_sizes.mean()
                        );
                    }
                    print_mem("memory", &r.memory);
                }
                Err(e) => {
                    eprintln!("dswpc: native execution failed: {e}");
                    return ExitCode::from(rt_exit_code(&e));
                }
            }
        }
        None => {}
    }
    if let Some(cfg) = args.sim {
        let cfg = cfg.with_comm_latency(args.comm);
        match Machine::new(&program, cfg).run() {
            Ok(r) => {
                println!("timing: {} cycles", r.cycles);
                for (c, s) in r.cores.iter().enumerate() {
                    println!(
                        "  core {c}: {} instrs ({} queue ops), IPC {:.2}",
                        s.retired,
                        s.queue_ops,
                        s.ipc(r.cycles)
                    );
                }
                println!(
                    "  queues: mean occupancy {:.1}, max {}",
                    r.occupancy.mean(),
                    r.occupancy.max()
                );
                print_mem("memory", &r.memory);
            }
            Err(e) => {
                eprintln!("dswpc: simulation failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn print_mem(label: &str, mem: &[i64]) {
    let nonzero: Vec<String> = mem
        .iter()
        .enumerate()
        .filter(|&(_, &v)| v != 0)
        .take(16)
        .map(|(a, v)| format!("[{a}]={v}"))
        .collect();
    println!("{label}: {}", nonzero.join(" "));
}
