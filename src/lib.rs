//! Top-level facade for the DSWP (MICRO 2005) reproduction workspace.
//!
//! This crate simply re-exports the workspace crates under one roof so the
//! examples and integration tests in the repository root can use a single
//! dependency:
//!
//! * [`ir`] — the intermediate representation (`dswp-ir`),
//! * [`analysis`] — dependence analyses and the PDG (`dswp-analysis`),
//! * [`dswp`] — the Decoupled Software Pipelining transformation (`dswp`),
//! * [`sim`] — the dual-core CMP timing model (`dswp-sim`),
//! * [`rt`] — the native multi-threaded runtime (`dswp-rt`),
//! * [`workloads`] — the benchmark kernels (`dswp-workloads`).
//!
//! See the repository `README.md` for a tour and `DESIGN.md` for the system
//! inventory.

pub use dswp;
pub use dswp_analysis as analysis;
pub use dswp_ir as ir;
pub use dswp_rt as rt;
pub use dswp_sim as sim;
pub use dswp_workloads as workloads;
